#!/bin/sh
# smoke_cluster.sh — end-to-end smoke test of multi-replica serving.
#
# Spins up three tafpgad replicas (each with its own journal state dir and
# flow cache) behind a -route front-end, then exercises the fleet:
#
#   1. Routing: the same spec submitted twice through the router lands on
#      the same HRW owner both times.
#   2. Byte-identical physics + peer cache fill: the same spec computed
#      directly on a *different* replica produces identical guardband
#      physics, and that replica fills its flow cache from the owner over
#      HTTP instead of rebuilding (peer-fill counters prove it).
#   3. Fan-out listing with ?state= filtering through the router.
#   4. Fleet-wide dedup: resubmitting a spec while its job runs coalesces
#      onto the same job on the same replica.
#   5. Chaos: SIGKILL the replica that owns a running job. Resubmitting
#      through the router fails over to the next ranked replica and
#      completes; restarting the killed replica recovers the orphaned job
#      from its journal; both computations agree byte-for-byte.
#
# Environment:
#   PORT_BASE=n  first port of the 4-port block (default 18090: router
#                18090, replicas 18091-18093)
#   SCALE=f      benchmark scale (default 1/64, the test harness scale)
#   TIMEOUT=n    per-phase budget in seconds (default 300)
set -eu

cd "$(dirname "$0")/.."

PORT_BASE="${PORT_BASE:-18090}"
SCALE="${SCALE:-0.015625}"
TIMEOUT="${TIMEOUT:-300}"
HOST="127.0.0.1"
ROUTER="http://$HOST:$PORT_BASE"
R0="http://$HOST:$((PORT_BASE + 1))"
R1="http://$HOST:$((PORT_BASE + 2))"
R2="http://$HOST:$((PORT_BASE + 3))"
RING="r0=$R0,r1=$R1,r2=$R2"
WORK="$(mktemp -d)"
BIN="$WORK/tafpgad"
ROUTER_PID=""
PID_r0="" PID_r1="" PID_r2=""

fail() {
	echo "smoke_cluster: FAIL: $*" >&2
	for log in "$WORK"/*.log; do
		echo "--- $log ---" >&2
		tail -40 "$log" >&2 || true
	done
	exit 1
}

cleanup() {
	for p in "$ROUTER_PID" "$PID_r0" "$PID_r1" "$PID_r2"; do
		[ -n "$p" ] && kill "$p" 2>/dev/null || true
	done
	rm -rf "$WORK"
}
trap cleanup EXIT

# url_of name — the base URL of a replica by name.
url_of() {
	case "$1" in
	r0) echo "$R0" ;;
	r1) echo "$R1" ;;
	r2) echo "$R2" ;;
	*) fail "unknown replica name $1" ;;
	esac
}

# start_replica name url — launches one fleet member and records its pid.
start_replica() {
	port="${2##*:}"
	"$BIN" -addr "$HOST:$port" -scale "$SCALE" -w 104 -effort 0.3 \
		-replica "$1" -peers "$RING" \
		-state-dir "$WORK/state-$1" -flowcache "$WORK/cache-$1" \
		-drain 60s >>"$WORK/$1.log" 2>&1 &
	eval "PID_$1=$!"
}

# wait_ready url what — polls /readyz.
wait_ready() {
	i=0
	until curl -fsS "$1/readyz" >/dev/null 2>&1; do
		i=$((i + 1))
		[ "$i" -le "$TIMEOUT" ] || fail "$2 not ready after ${TIMEOUT}s"
		sleep 1
	done
}

# poll_done base id — polls a job until done, echoing the final view.
poll_done() {
	i=0
	while :; do
		VIEW="$(curl -fsS "$1/v1/jobs/$2")"
		STATE_NOW="$(echo "$VIEW" | grep -o '"state":"[^"]*"' | head -1 | cut -d'"' -f4)"
		case "$STATE_NOW" in
		done)
			echo "$VIEW"
			return 0
			;;
		failed | cancelled) fail "job $2 ended $STATE_NOW: $VIEW" ;;
		esac
		i=$((i + 1))
		[ "$i" -le "$TIMEOUT" ] || fail "job $2 still $STATE_NOW after ${TIMEOUT}s"
		sleep 1
	done
}

job_id() {
	echo "$1" | grep -o '"id":"[^"]*"' | head -1 | cut -d'"' -f4
}

result_of() {
	echo "$1" | sed 's/.*"result"://'
}

# physics_of view — the result minus its Stats block (wall-clock timings
# legitimately vary run to run; the physics must not).
physics_of() {
	result_of "$1" | sed 's/,"Stats":.*//'
}

echo "building tafpgad..." >&2
go build -o "$BIN" ./cmd/tafpgad

echo "starting 3 replicas + router on ports $PORT_BASE-$((PORT_BASE + 3))..." >&2
start_replica r0 "$R0"
start_replica r1 "$R1"
start_replica r2 "$R2"
"$BIN" -addr "$HOST:$PORT_BASE" -route -replica router -peers "$RING" \
	>"$WORK/router.log" 2>&1 &
ROUTER_PID=$!
wait_ready "$R0" "replica r0"
wait_ready "$R1" "replica r1"
wait_ready "$R2" "replica r2"
wait_ready "$ROUTER" "router"

SPEC_A='{"kind":"guardband","benchmark":"sha","ambient_c":25}'
SPEC_B='{"kind":"guardband","benchmark":"bgm","ambient_c":30}'

# --- Phase 1: routing consistency ------------------------------------------
echo "phase 1: double submit routes to the same HRW owner..." >&2
HDR1="$WORK/hdr1"
SUB1="$(curl -fsS -D "$HDR1" "$ROUTER/v1/jobs" -d "$SPEC_A")"
ID_A="$(job_id "$SUB1")"
OWNER_A="$(grep -i '^x-tafpga-replica:' "$HDR1" | tr -d '\r' | awk '{print $2}')"
[ -n "$ID_A" ] || fail "no job id from routed submit: $SUB1"
[ -n "$OWNER_A" ] || fail "routed submit carries no replica header"

HDR2="$WORK/hdr2"
SUB2="$(curl -fsS -D "$HDR2" "$ROUTER/v1/jobs" -d "$SPEC_A")"
OWNER_A2="$(grep -i '^x-tafpga-replica:' "$HDR2" | tr -d '\r' | awk '{print $2}')"
[ "$OWNER_A" = "$OWNER_A2" ] || fail "same spec routed to $OWNER_A then $OWNER_A2"

VIEW_A="$(poll_done "$ROUTER" "$ID_A")"
PHYS_A="$(physics_of "$VIEW_A")"
echo "$PHYS_A" | grep -q '"' || fail "routed job has no result: $VIEW_A"
echo "  owner $OWNER_A, job $ID_A done" >&2

# --- Phase 2: byte-identical physics on another replica via peer fill ------
echo "phase 2: same spec computed on a different replica..." >&2
OTHER="r0"
[ "$OWNER_A" = "r0" ] && OTHER="r1"
OTHER_URL="$(url_of "$OTHER")"
ID_O="$(job_id "$(curl -fsS "$OTHER_URL/v1/jobs" -d "$SPEC_A")")"
VIEW_O="$(poll_done "$OTHER_URL" "$ID_O")"
PHYS_O="$(physics_of "$VIEW_O")"
[ "$PHYS_A" = "$PHYS_O" ] || fail "physics differ across replicas:
$OWNER_A: $PHYS_A
$OTHER: $PHYS_O"

PEER_HITS="$(curl -fsS "$OTHER_URL/metrics" | grep '^tafpgad_cache_peer_hits_total' | awk '{print $2}')"
[ "${PEER_HITS:-0}" -ge 1 ] || fail "replica $OTHER shows no peer cache hits (got '${PEER_HITS:-}')"
SERVES="$(curl -fsS "$(url_of "$OWNER_A")/metrics" | grep '^tafpgad_cache_serves_total' | awk '{print $2}')"
[ "${SERVES:-0}" -ge 1 ] || fail "owner $OWNER_A served no cache entries (got '${SERVES:-}')"
echo "  identical physics; $OTHER filled $PEER_HITS flow-cache entr(ies) from the fleet" >&2

# --- Phase 3: fan-out listing with ?state= ---------------------------------
echo "phase 3: merged listing through the router..." >&2
LIST="$(curl -fsS "$ROUTER/v1/jobs?state=done")"
echo "$LIST" | grep -q '"replica":' || fail "merged listing has no replica attribution: $LIST"
DONE_COUNT="$(echo "$LIST" | grep -o '"replica":' | wc -l | tr -d ' ')"
[ "$DONE_COUNT" -ge 2 ] || fail "expected >=2 done jobs fleet-wide, saw $DONE_COUNT: $LIST"
CODE="$(curl -s -o /dev/null -w '%{http_code}' "$ROUTER/v1/jobs?state=bogus")"
[ "$CODE" = "400" ] || fail "?state=bogus through the router returned $CODE, want 400"

CLUSTER="$(curl -fsS "$ROUTER/v1/cluster")"
READY_COUNT="$(echo "$CLUSTER" | grep -o '"ready":true' | wc -l | tr -d ' ')"
[ "$READY_COUNT" = "3" ] || fail "cluster reports $READY_COUNT ready replicas, want 3: $CLUSTER"

# --- Phase 4+5: fleet-wide dedup, then SIGKILL the owner of a running job --
echo "phase 4: dedup against a running job, then chaos..." >&2
HDR_B="$WORK/hdrb"
SUB_B="$(curl -fsS -D "$HDR_B" "$ROUTER/v1/jobs" -d "$SPEC_B")"
ID_B="$(job_id "$SUB_B")"
OWNER_B="$(grep -i '^x-tafpga-replica:' "$HDR_B" | tr -d '\r' | awk '{print $2}')"
[ -n "$OWNER_B" ] || fail "no owner header for the victim job"
OWNER_B_URL="$(url_of "$OWNER_B")"

i=0
while :; do
	STATE_B="$(curl -fsS "$OWNER_B_URL/v1/jobs/$ID_B" | grep -o '"state":"[^"]*"' | head -1 | cut -d'"' -f4)"
	[ "$STATE_B" = "running" ] && break
	[ "$STATE_B" = "done" ] && fail "victim job finished before it could be killed; raise the benchmark scale"
	i=$((i + 1))
	[ "$i" -le $((TIMEOUT * 5)) ] || fail "victim job never started running"
	sleep 0.2
done

# While the job runs, an identical spec through the router must coalesce
# onto it: same replica, same id, deduped:true. This is the fleet-wide
# dedup property — rendezvous hashing sends equal specs to equal owners.
HDR_D="$WORK/hdrd"
SUB_D="$(curl -fsS -D "$HDR_D" "$ROUTER/v1/jobs" -d "$SPEC_B")"
OWNER_D="$(grep -i '^x-tafpga-replica:' "$HDR_D" | tr -d '\r' | awk '{print $2}')"
[ "$OWNER_D" = "$OWNER_B" ] || fail "duplicate spec routed to $OWNER_D, owner is $OWNER_B"
echo "$SUB_D" | grep -q '"deduped":true' || fail "running duplicate did not coalesce: $SUB_D"
[ "$(job_id "$SUB_D")" = "$ID_B" ] || fail "duplicate coalesced onto a different job: $SUB_D"

eval "VICTIM_PID=\$PID_$OWNER_B"
echo "  SIGKILL $OWNER_B (pid $VICTIM_PID) while $ID_B runs..." >&2
kill -9 "$VICTIM_PID"
wait "$VICTIM_PID" 2>/dev/null || true
eval "PID_$OWNER_B="

echo "  resubmitting through the router fails over..." >&2
HDR_F="$WORK/hdrf"
SUB_F="$(curl -fsS -D "$HDR_F" "$ROUTER/v1/jobs" -d "$SPEC_B")"
ID_F="$(job_id "$SUB_F")"
FAILOVER="$(grep -i '^x-tafpga-replica:' "$HDR_F" | tr -d '\r' | awk '{print $2}')"
[ -n "$ID_F" ] || fail "failover submit rejected: $SUB_F"
[ "$FAILOVER" != "$OWNER_B" ] || fail "failover submit still routed to the dead $OWNER_B"
VIEW_F="$(poll_done "$(url_of "$FAILOVER")" "$ID_F")"
PHYS_F="$(physics_of "$VIEW_F")"

echo "  restarting $OWNER_B; journal recovery must finish the orphan..." >&2
start_replica "$OWNER_B" "$OWNER_B_URL"
wait_ready "$OWNER_B_URL" "restarted $OWNER_B"
VIEW_R="$(poll_done "$OWNER_B_URL" "$ID_B")"
echo "$VIEW_R" | grep -q '"recovered":true' || fail "recovered job not marked recovered: $VIEW_R"
PHYS_R="$(physics_of "$VIEW_R")"
[ "$PHYS_F" = "$PHYS_R" ] || fail "failover and recovered physics differ:
failover ($FAILOVER): $PHYS_F
recovered ($OWNER_B): $PHYS_R"

FAILOVERS="$(curl -fsS "$ROUTER/metrics" | grep '^tafpgad_router_failovers_total' | awk '{print $2}')"
[ "${FAILOVERS:-0}" -ge 1 ] || fail "router recorded no failovers (got '${FAILOVERS:-}')"
curl -fsS "$ROUTER/metrics" | grep -q '^tafpgad_build_info{.*role="router"' ||
	fail "router /metrics missing its build_info gauge"
curl -fsS "$OTHER_URL/metrics" | grep -q '^tafpgad_build_info{.*role="replica"' ||
	fail "replica /metrics missing its build_info gauge"

echo "smoke_cluster: PASS" >&2
