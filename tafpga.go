// Package tafpga is a thermal-aware FPGA CAD flow: an implementation of
// "Thermal-Aware Design and Flow for FPGA Performance Improvement"
// (Khaleghi and Rosing, DATE 2019) together with every substrate the paper
// builds on — transistor-level device characterization and corner-specific
// sizing (COFFE-style), a standard-cell library and gate-level DSP block,
// an island-style architecture model, a pack/place/route implementation
// flow (VPR-style), activity estimation (ACE-style), per-tile power
// modeling, a steady-state thermal simulator (HotSpot-style), and
// temperature-aware static timing analysis.
//
// The two headline capabilities are:
//
//   - Thermal-aware guardbanding (the paper's Algorithm 1): clock a mapped
//     design for its converged per-tile thermal profile plus a small δT
//     margin instead of the worst-case corner, recovering up to ~36 %
//     performance at a 25 °C ambient.
//
//   - Thermal-aware device selection (Eq. 1): size the fabric for the
//     thermal corner of a foreknown field condition and pick the grade that
//     minimizes expected delay over the operating range.
//
// The quickest path through the API:
//
//	cfg := tafpga.NewConfig()
//	dev, _ := cfg.SizeDevice(25)                       // a D25 fabric
//	nl, _ := tafpga.GenerateBenchmark("sha", 1.0/16)   // a workload
//	im, _ := tafpga.Implement(nl, dev, tafpga.DefaultFlowOptions())
//	res, _ := im.Guardband(tafpga.GuardbandOptions(25))
//	fmt.Printf("+%.1f%% over worst-case\n", res.GainPct)
package tafpga

import (
	"tafpga/internal/bench"
	"tafpga/internal/coffe"
	"tafpga/internal/flow"
	"tafpga/internal/guardband"
	"tafpga/internal/netlist"
	"tafpga/internal/techmodel"
	"tafpga/internal/thermarch"
)

// Re-exported core types. The aliases make the internal packages' full
// APIs available through the public module surface.
type (
	// Device is a frozen, corner-optimized fabric characterization.
	Device = coffe.Device
	// ArchParams are the Table I architecture parameters.
	ArchParams = coffe.Params
	// ResourceKind identifies one characterized resource class.
	ResourceKind = coffe.ResourceKind
	// Kit is the transistor/wire process design kit.
	Kit = techmodel.Kit
	// Netlist is a technology-mapped design.
	Netlist = netlist.Netlist
	// Implementation is a placed-and-routed design bound to a device.
	Implementation = flow.Implementation
	// FlowOptions tunes the implementation pipeline.
	FlowOptions = flow.Options
	// GuardbandResult reports one Algorithm 1 run.
	GuardbandResult = guardband.Result
	// BenchmarkProfile describes one of the 19 VTR-style workloads.
	BenchmarkProfile = bench.Profile
	// CornerChoice ranks a candidate sizing corner by expected delay.
	CornerChoice = thermarch.CornerChoice
	// Grade is a named thermal device grade.
	Grade = thermarch.Grade
)

// Resource kind constants, re-exported for breakdown inspection.
const (
	SBMux       = coffe.SBMux
	CBMux       = coffe.CBMux
	LocalMux    = coffe.LocalMux
	FeedbackMux = coffe.FeedbackMux
	OutputMux   = coffe.OutputMux
	LUTA        = coffe.LUTA
	BRAM        = coffe.BRAM
	DSP         = coffe.DSP
)

// Config couples a process kit with an architecture.
type Config struct {
	Kit  *Kit
	Arch ArchParams
}

// NewConfig returns the paper's setup: the calibrated 22 nm kit and the
// Table I architecture.
func NewConfig() Config {
	return Config{Kit: techmodel.Default22nm(), Arch: coffe.DefaultParams()}
}

// SizeDevice runs the COFFE-style sizing flow at the given thermal corner
// (°C) and returns the frozen device.
func (c Config) SizeDevice(cornerC float64) (*Device, error) {
	return coffe.SizeDevice(c.Kit, c.Arch, cornerC)
}

// AtVdd returns a configuration whose core-logic rail runs at the given
// supply voltage — the voltage half of corner notation like "100°C@0.8V".
// The BRAM keeps its own low-power rail.
func (c Config) AtVdd(vdd float64) (Config, error) {
	kit, err := c.Kit.AtVdd(vdd)
	if err != nil {
		return Config{}, err
	}
	out := c
	out.Kit = kit
	out.Arch.Vdd = vdd
	return out, nil
}

// DeviceLibrary returns a corner-device cache for architecture exploration.
func (c Config) DeviceLibrary() *thermarch.Library {
	return thermarch.NewLibrary(c.Kit, c.Arch)
}

// Benchmarks lists the 19 VTR-style workload profiles at full scale.
func Benchmarks() []BenchmarkProfile { return bench.VTR }

// GenerateBenchmark builds the named benchmark netlist at the given scale
// (1.0 = the published size; the experiment harness uses 1/16).
func GenerateBenchmark(name string, scale float64) (*Netlist, error) {
	p, err := bench.ByName(name)
	if err != nil {
		return nil, err
	}
	return bench.Generate(p.Scaled(scale), bench.SeedFor(name))
}

// DefaultFlowOptions returns the standard implementation settings.
func DefaultFlowOptions() FlowOptions { return flow.DefaultOptions() }

// Implement runs activity estimation, packing, placement, routing, and
// model assembly for a netlist on a device.
func Implement(nl *Netlist, dev *Device, opts FlowOptions) (*Implementation, error) {
	return flow.Implement(nl, dev, opts)
}

// GuardbandOptions returns the paper's Algorithm 1 settings for an ambient
// temperature (T_worst = 100 °C baseline, δT = 0.5 °C).
func GuardbandOptions(ambientC float64) guardband.Options {
	return guardband.DefaultOptions(ambientC)
}

// SelectCorner ranks candidate sizing corners by expected delay (Eq. 1)
// over a uniform field temperature range — the thermal-aware architecture
// step of Section III-C.
func (c Config) SelectCorner(tMinC, tMaxC float64, candidates []float64) ([]CornerChoice, error) {
	return c.DeviceLibrary().SelectCorner(tMinC, tMaxC, candidates)
}

// StandardGrades returns the thermal device-grade menu used in the
// experiments.
func StandardGrades() []Grade { return thermarch.StandardGrades() }

// GradeFor picks the standard grade best matching a field range.
func GradeFor(tMinC, tMaxC float64) Grade { return thermarch.GradeFor(tMinC, tMaxC) }
