module tafpga

go 1.22
