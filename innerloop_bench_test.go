// Inner-loop perf-regression benchmarks: the three kernels Algorithm 1
// spends its time in — the full-netlist timing probe, the steady-state
// thermal solve, and the complete guardbanding run — each measured in its
// optimized form and against the seed ("Reference") implementation kept in
// the same binary, so before/after speedups come from one build:
//
//	scripts/bench.sh    # runs these and emits BENCH_inner_loop.json
//
// The subject is mcml, the largest bundled benchmark, at the shared harness
// scale.
package tafpga_test

import (
	"fmt"
	"sync"
	"testing"

	"tafpga/internal/flow"
	"tafpga/internal/guardband"
	"tafpga/internal/sta"
)

var (
	innerOnce sync.Once
	innerIm   *flow.Implementation
	innerErr  error
)

// innerLoopFixture implements the largest bundled benchmark once and shares
// it across the kernel benchmarks.
func innerLoopFixture(b *testing.B) *flow.Implementation {
	b.Helper()
	innerOnce.Do(func() {
		ctx := sharedContext(b)
		innerIm, innerErr = ctx.Implementation("mcml")
	})
	if innerErr != nil {
		b.Fatal(innerErr)
	}
	return innerIm
}

// hotTemps builds a non-uniform operating-point temperature map so the
// kernels price a realistic gradient, not a constant.
func hotTemps(im *flow.Implementation) []float64 {
	n := im.Grid.NumTiles()
	t := make([]float64, n)
	for i := range t {
		t[i] = 45 + 20*float64(i%im.Grid.W)/float64(im.Grid.W)
	}
	return t
}

// BenchmarkHotspotSolve measures the factorized direct thermal solve.
func BenchmarkHotspotSolve(b *testing.B) {
	im := innerLoopFixture(b)
	p := im.Power.Vector(100, hotTemps(im))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := im.Thermal.Solve(p, 25); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotspotSolveIterative measures the optimized Gauss-Seidel
// fallback (precomputed neighbor lists), cold-started.
func BenchmarkHotspotSolveIterative(b *testing.B) {
	im := innerLoopFixture(b)
	p := im.Power.Vector(100, hotTemps(im))
	m := *im.Thermal
	m.DisableDirect = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Solve(p, 25); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotspotSolveReference measures the seed Gauss-Seidel solver.
func BenchmarkHotspotSolveReference(b *testing.B) {
	im := innerLoopFixture(b)
	p := im.Power.Vector(100, hotTemps(im))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := im.Thermal.SolveReference(p, 25); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSTAAnalyze measures the compiled full-netlist timing probe.
func BenchmarkSTAAnalyze(b *testing.B) {
	im := innerLoopFixture(b)
	temps := hotTemps(im)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := im.Timing.Analyze(temps); rep.PeriodPs <= 0 {
			b.Fatal("degenerate probe")
		}
	}
}

// BenchmarkSTAAnalyzeReference measures the seed map-walking probe.
func BenchmarkSTAAnalyzeReference(b *testing.B) {
	im := innerLoopFixture(b)
	temps := hotTemps(im)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := im.Timing.AnalyzeReference(temps); rep.PeriodPs <= 0 {
			b.Fatal("degenerate probe")
		}
	}
}

// BenchmarkSTAIncrementalLocal measures the delta-layer analyzer on a
// localized perturbation: each probe nudges one tile and re-analyzes, so
// only the arcs reading that tile's delays are recomputed. Paired against
// BenchmarkSTAAnalyzeLocal, the dense probe on the identical temperature
// trajectory (the reports are bit-identical; only the work differs).
func BenchmarkSTAIncrementalLocal(b *testing.B) {
	im := innerLoopFixture(b)
	temps := hotTemps(im)
	inc := sta.NewIncremental(im.Timing)
	if rep := inc.Analyze(temps); rep.PeriodPs <= 0 {
		b.Fatal("degenerate warm-up probe")
	}
	n := im.Grid.NumTiles()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		temps[i%n] += 0.25
		if rep := inc.Analyze(temps); rep.PeriodPs <= 0 {
			b.Fatal("degenerate probe")
		}
	}
}

// BenchmarkSTAAnalyzeLocal is the dense "before" twin of
// BenchmarkSTAIncrementalLocal: the same one-tile-per-probe trajectory,
// re-analyzed from scratch every time.
func BenchmarkSTAAnalyzeLocal(b *testing.B) {
	im := innerLoopFixture(b)
	temps := hotTemps(im)
	if rep := im.Timing.Analyze(temps); rep.PeriodPs <= 0 {
		b.Fatal("degenerate warm-up probe")
	}
	n := im.Grid.NumTiles()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		temps[i%n] += 0.25
		if rep := im.Timing.Analyze(temps); rep.PeriodPs <= 0 {
			b.Fatal("degenerate probe")
		}
	}
}

// BenchmarkSTASlacks measures the per-block slack pass (forward + backward
// sweep on the compiled graph).
func BenchmarkSTASlacks(b *testing.B) {
	im := innerLoopFixture(b)
	temps := hotTemps(im)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sl := im.Timing.Slacks(temps); sl.PeriodPs <= 0 {
			b.Fatal("degenerate slack pass")
		}
	}
}

// BenchmarkSTASlacksInto measures the slack pass with caller-owned buffers —
// the allocation-free steady state of loops that re-probe criticality.
func BenchmarkSTASlacksInto(b *testing.B) {
	im := innerLoopFixture(b)
	temps := hotTemps(im)
	var rep sta.SlackReport
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		im.Timing.SlacksInto(temps, &rep)
		if rep.PeriodPs <= 0 {
			b.Fatal("degenerate slack pass")
		}
	}
}

// TestSlacksIntoAllocationBound pins the slack-pass allocation win: once the
// report buffers and the probe scratch pool are warm, a re-probed slack pass
// may allocate only Analyze's small returned report (map header + breakdown
// buckets), not fresh per-call arrival/required/criticality vectors.
func TestSlacksIntoAllocationBound(t *testing.T) {
	if testing.Short() {
		t.Skip("implements mcml; skipped in -short")
	}
	ctx := sharedContext(t)
	im, err := ctx.Implementation("mcml")
	if err != nil {
		t.Fatal(err)
	}
	temps := hotTemps(im)
	var rep sta.SlackReport
	im.Timing.SlacksInto(temps, &rep) // warm the buffers and scratch pool
	avg := testing.AllocsPerRun(20, func() { im.Timing.SlacksInto(temps, &rep) })
	if avg > 20 {
		t.Fatalf("SlacksInto allocates %.1f objects per warmed call, want <= 20", avg)
	}
}

// BenchmarkGuardbandRun measures one complete Algorithm-1 run with the
// optimized kernels (compiled STA, direct thermal solve, warm start).
func BenchmarkGuardbandRun(b *testing.B) {
	im := innerLoopFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := im.Guardband(guardband.DefaultOptions(25))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(res.Stats.STAProbes), "sta-probes")
			b.ReportMetric(float64(res.Stats.ThermalSweeps), "gs-sweeps")
		}
	}
}

// BenchmarkGuardbandRunReference measures the same run forced onto the seed
// kernels — the "before" number of the perf harness.
func BenchmarkGuardbandRunReference(b *testing.B) {
	im := innerLoopFixture(b)
	opts := guardband.DefaultOptions(25)
	opts.Reference = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := im.Guardband(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// sweepAmbients is the Fig. 6/7/8 temperature axis (0:100:10) both sweep
// benchmarks traverse.
func sweepAmbients() []float64 {
	amb := make([]float64, 0, 11)
	for t := 0.0; t <= 100; t += 10 {
		amb = append(amb, t)
	}
	return amb
}

// BenchmarkGuardbandSweepSerial measures the serial ambient sweep: one
// warm-started Algorithm-1 run per ambient, as GuardbandSweep executes it
// without batching. The "before" half of the sweep-batching pair.
func BenchmarkGuardbandSweepSerial(b *testing.B) {
	im := innerLoopFixture(b)
	ambients := sweepAmbients()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var seed []float64
		for _, amb := range ambients {
			opts := guardband.DefaultOptions(amb)
			opts.ThermalSeed = seed
			res, err := im.Guardband(opts)
			if err != nil {
				b.Fatal(err)
			}
			seed = res.SeedTemps
		}
	}
}

// BenchmarkGuardbandSweepBatch measures the same ambient axis through the
// batched engine at full width (batch = len(ambients)): one shared baseline
// probe, SoA STA traversals, multi-RHS thermal solves, lanes retiring as
// they converge. Every per-ambient result is bit-identical to the serial
// sweep's.
func BenchmarkGuardbandSweepBatch(b *testing.B) {
	im := innerLoopFixture(b)
	ambients := sweepAmbients()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := im.GuardbandBatch(ambients, guardband.DefaultOptions(0))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			var sum guardband.Stats
			for _, r := range rs {
				sum.Add(r.Stats)
			}
			b.ReportMetric(float64(sum.LockstepIters), "lockstep-rounds")
			b.ReportMetric(float64(sum.RetiredEarly), "retired-early")
		}
	}
}

// energyAmbients is the ambient axis of the min-energy benchmark pair.
// Neighboring ambients bisect the same dyadic voltage grid, so the axis is
// exactly the workload the VddLab's per-rail memoization targets.
func energyAmbients() []float64 { return []float64{0, 25, 70} }

// naiveEnergyModels derives the per-rail models for one probe from scratch
// — Implementation.AtVdd straight off the base, no memoization — so every
// probe of every ambient pays the full device re-characterization and model
// assembly. This is the "before" shape of the search: correct, and what a
// caller without the VddLab would write.
func naiveEnergyModels(im *flow.Implementation, ambientC float64) func(float64) (guardband.EnergyModels, error) {
	nominal := im.Device.Kit.Buf.Vdd
	return func(vdd float64) (guardband.EnergyModels, error) {
		v := im
		if vdd != nominal {
			var err error
			v, err = im.AtVdd(vdd)
			if err != nil {
				return guardband.EnergyModels{}, err
			}
		}
		if err := v.Device.Kit.OperableAt(ambientC); err != nil {
			return guardband.EnergyModels{}, err
		}
		return guardband.EnergyModels{Timing: v.Timing, Power: v.Power, Thermal: v.Thermal}, nil
	}
}

// BenchmarkMinEnergySearch measures the min-energy objective across the
// ambient axis through one VddLab: probes at repeated rails (neighboring
// ambients walk the same dyadic voltage grid) reuse the memoized device
// tables and analysis models.
func BenchmarkMinEnergySearch(b *testing.B) {
	im := innerLoopFixture(b)
	ambients := energyAmbients()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lab := flow.NewVddLab(im)
		probes := 0
		for _, amb := range ambients {
			res, err := lab.MinEnergy(guardband.DefaultEnergyOptions(amb))
			if err != nil {
				b.Fatal(err)
			}
			probes += res.Probes
		}
		if i == b.N-1 {
			b.ReportMetric(float64(probes), "vdd-probes")
		}
	}
}

// BenchmarkMinEnergyRebuild measures the same searches with per-probe
// from-scratch model derivation (no memoization, no sharing across
// ambients) — the naive "before" half of the pair. The physics is
// bit-identical; only the derivation work differs.
func BenchmarkMinEnergyRebuild(b *testing.B) {
	im := innerLoopFixture(b)
	ambients := energyAmbients()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, amb := range ambients {
			opts := guardband.DefaultEnergyOptions(amb)
			opts.NominalVddV = im.Device.Kit.Buf.Vdd
			opts.ModelsAt = naiveEnergyModels(im, amb)
			if _, err := guardband.RunEnergy(opts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// TestMinEnergyBenchmarkAgreement guards the pair: the memoized and naive
// searches must land on identical physics (only Stats — wall-clock and
// kernel counts — may differ).
func TestMinEnergyBenchmarkAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("implements mcml; skipped in -short")
	}
	ctx := sharedContext(t)
	im, err := ctx.Implementation("mcml")
	if err != nil {
		t.Fatal(err)
	}
	lab := flow.NewVddLab(im)
	for _, amb := range energyAmbients() {
		viaLab, err := lab.MinEnergy(guardband.DefaultEnergyOptions(amb))
		if err != nil {
			t.Fatal(err)
		}
		opts := guardband.DefaultEnergyOptions(amb)
		opts.NominalVddV = im.Device.Kit.Buf.Vdd
		opts.ModelsAt = naiveEnergyModels(im, amb)
		naive, err := guardband.RunEnergy(opts)
		if err != nil {
			t.Fatal(err)
		}
		a, b := *viaLab, *naive
		a.Stats, b.Stats = guardband.Stats{}, guardband.Stats{}
		if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
			t.Fatalf("ambient %g: memoized and naive searches diverged:\nlab:   %+v\nnaive: %+v", amb, a, b)
		}
	}
}

// TestInnerLoopBenchmarkAgreement guards the harness itself: the optimized
// and reference guardband runs it compares must land on the same operating
// point for the benchmark subject.
func TestInnerLoopBenchmarkAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("implements mcml; skipped in -short")
	}
	ctx := sharedContext(t)
	im, err := ctx.Implementation("mcml")
	if err != nil {
		t.Fatal(err)
	}
	opt, err := im.Guardband(guardband.DefaultOptions(25))
	if err != nil {
		t.Fatal(err)
	}
	refOpts := guardband.DefaultOptions(25)
	refOpts.Reference = true
	ref, err := im.Guardband(refOpts)
	if err != nil {
		t.Fatal(err)
	}
	if opt.BaselineMHz != ref.BaselineMHz {
		t.Fatalf("baseline diverged: %v vs %v", opt.BaselineMHz, ref.BaselineMHz)
	}
	rel := (opt.FmaxMHz - ref.FmaxMHz) / ref.FmaxMHz
	if rel < 0 {
		rel = -rel
	}
	if rel > 1e-5 {
		t.Fatalf("fmax diverged: %v vs %v (rel %g)", opt.FmaxMHz, ref.FmaxMHz, rel)
	}
	// The probe the benchmarks time must also agree bit for bit.
	temps := hotTemps(im)
	if got, want := im.Timing.Analyze(temps).PeriodPs, im.Timing.AnalyzeReference(temps).PeriodPs; got != want {
		t.Fatalf("Analyze %v != AnalyzeReference %v", got, want)
	}
}
