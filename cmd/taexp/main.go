// Command taexp regenerates every table and figure of the paper's
// evaluation from the reimplemented flow. Run it with no arguments to
// reproduce the full set, or name specific experiments:
//
//	taexp [flags] [fig1 fig2 fig3 table1 table2 fig6 fig7 fig8 ablations scorecard]
//
// The additional "fig8sweep" experiment (not in the default set) extends
// Fig. 8 along the 0–100 °C ambient axis per benchmark; with -sweep-batch
// its ambient lanes run in lockstep through the batched guardband engine.
// The additional "thermalcompare" experiment (also not in the default set)
// takes every benchmark through the full Algorithm-1 guardband twice —
// thermally-oblivious vs thermal-aware placement under -thermal-weight /
// -thermal-radius — and reports the ΔT_peak / Δf_guardband table.
// The additional "energysweep" experiment (also not in the default set)
// runs the min-energy guardband objective per benchmark and ambient
// (-energy-ambients): instead of raising the clock, the recovered thermal
// margin is spent lowering the core rail at iso-frequency (-target, 0 =
// each benchmark's own conventional worst-case clock), and the table
// reports the minimum safe Vdd plus the power and energy-per-cycle saving.
//
// Flags:
//
//	-scale f    benchmark scale relative to the published sizes (default 1/16)
//	-w n        router channel-width override (default: Table I's 320)
//	-effort f   placement effort (default 1.0)
//	-bench csv  restrict Fig. 6/7/8 to a comma-separated benchmark list
//	-csv dir    also write machine-readable CSVs into dir
//	-parallel n benchmark fan-out workers (0 = GOMAXPROCS, 1 = serial)
//	-sweep-batch n  lockstep lanes per batched guardband dispatch in sweep
//	            experiments; per-lane results bit-identical (0/1 = serial)
//	-timeout d  abort after this duration (0 = none); benchmark-suite
//	            experiments still print and write the CSV rows that finished
//	-flowcache d   cache place-and-route results in directory d so repeated
//	               invocations skip the implementation front-end
//	-cpuprofile f  write a CPU profile of the run to f (go tool pprof)
//	-memprofile f  write a heap profile at exit to f
//
// Experiment results go to stdout; timing lines (per-benchmark wall time,
// per-experiment totals, the parallel speedup, and the Algorithm-1 kernel
// accounting) go to stderr, so stdout is byte-identical for any -parallel
// value and for any solver configuration.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"tafpga/internal/experiments"
	"tafpga/internal/flow"
	"tafpga/internal/guardband"
)

func main() {
	scale := flag.Float64("scale", 1.0/16, "benchmark scale")
	width := flag.Int("w", 0, "router channel-width override (0 = Table I)")
	effort := flag.Float64("effort", 1.0, "placement effort")
	benchCSV := flag.String("bench", "", "comma-separated benchmark subset")
	csvDir := flag.String("csv", "", "also write machine-readable CSVs into this directory")
	parallel := flag.Int("parallel", 0, "benchmark fan-out workers (0 = GOMAXPROCS, 1 = serial)")
	routeWorkers := flag.Int("route-workers", 0, "PathFinder search workers per flow build; byte-identical results (0 = GOMAXPROCS, 1 = serial)")
	sweepBatch := flag.Int("sweep-batch", 0, "lockstep lanes per batched guardband dispatch in sweep experiments; bit-identical per lane (0/1 = serial)")
	flowcache := flag.String("flowcache", "", "directory for the on-disk place-and-route cache (reused across runs)")
	thermalWeight := flag.Float64("thermal-weight", 0.25, "thermal objective weight for the thermalcompare experiment")
	thermalRadius := flag.Int("thermal-radius", 0, "thermal kernel truncation radius in tiles (0 = default)")
	thermalAmbient := flag.Float64("thermal-ambient", 25, "guardbanding ambient °C for the thermalcompare experiment")
	energyAmbients := flag.String("energy-ambients", "25,70", "comma-separated ambient °C axis for the energysweep experiment")
	targetMHz := flag.Float64("target", 0, "iso-frequency target in MHz for the energysweep experiment (0 = each benchmark's worst-case baseline)")
	timeout := flag.Duration("timeout", 0, "abort after this duration (0 = none)")
	cpuprofile := flag.String("cpuprofile", "", "write CPU profile to file")
	memprofile := flag.String("memprofile", "", "write heap profile to file at exit")
	flag.Parse()

	// SIGINT/SIGTERM (and -timeout) cancel benchmark runs at the next flow
	// stage or Algorithm-1 iteration; suite experiments still flush the
	// benchmarks that finished before exiting non-zero.
	runCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(runCtx, *timeout)
		defer cancel()
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "taexp:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "taexp:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "taexp:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "taexp:", err)
			}
		}()
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "taexp:", err)
			os.Exit(1)
		}
	}

	ctx := experiments.NewContext(*scale)
	ctx.Ctx = runCtx
	ctx.ChannelTracks = *width
	ctx.PlaceEffort = *effort
	ctx.Workers = *parallel
	ctx.RouteWorkers = *routeWorkers
	ctx.SweepBatch = *sweepBatch
	if *flowcache != "" {
		ctx.FlowCache = flow.NewCache(*flowcache)
	}
	if *benchCSV != "" {
		ctx.Benchmarks = strings.Split(*benchCSV, ",")
	}

	// Per-benchmark wall times, drained after each experiment. The pool
	// serializes callback invocations.
	type benchTime struct {
		name string
		d    time.Duration
	}
	var times []benchTime
	ctx.OnBenchDone = func(name string, d time.Duration) {
		times = append(times, benchTime{name, d})
	}

	wanted := flag.Args()
	if len(wanted) == 0 {
		wanted = []string{"fig1", "fig2", "fig3", "table1", "table2", "fig6", "fig7", "fig8", "ablations", "scorecard"}
	}
	ambients, err := parseAmbients(*energyAmbients)
	if err != nil {
		fmt.Fprintln(os.Stderr, "taexp:", err)
		os.Exit(1)
	}
	tp := flow.ThermalPlace{Weight: *thermalWeight, KernelRadius: *thermalRadius}
	for _, name := range wanted {
		start := time.Now()
		if err := run(ctx, name, *csvDir, tp, *thermalAmbient, ambients, *targetMHz); err != nil {
			fmt.Fprintf(os.Stderr, "taexp: %s: %v\n", name, err)
			os.Exit(1)
		}
		wall := time.Since(start)
		if len(times) > 0 {
			var serialEq time.Duration
			for _, bt := range times {
				serialEq += bt.d
				fmt.Fprintf(os.Stderr, "  [%s: %-18s %v]\n", name, bt.name, bt.d.Round(time.Millisecond))
			}
			fmt.Fprintf(os.Stderr, "[%s: %d benchmark runs, serial-equivalent %v, wall %v, speedup %.2fx]\n",
				name, len(times), serialEq.Round(time.Millisecond), wall.Round(time.Millisecond),
				serialEq.Seconds()/wall.Seconds())
			times = times[:0]
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", name, wall.Round(time.Millisecond))
		fmt.Println()
	}
}

// parseAmbients parses the -energy-ambients axis.
func parseAmbients(csv string) ([]float64, error) {
	var out []float64
	for _, s := range strings.Split(csv, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return nil, fmt.Errorf("bad ambient %q in -energy-ambients", s)
		}
		out = append(out, v)
	}
	return out, nil
}

func run(ctx *experiments.Context, name, csvDir string, tp flow.ThermalPlace, thermalAmbient float64, energyAmbients []float64, targetMHz float64) error {
	warnUnconverged := func(rs []experiments.BenchResult) {
		if un := experiments.Unconverged(rs); len(un) > 0 {
			fmt.Fprintf(os.Stderr, "taexp: warning: %s: Algorithm 1 exhausted its iteration budget on: %s\n",
				name, strings.Join(un, ", "))
		}
		// Kernel accounting goes to stderr with the other timing lines.
		fmt.Fprintf(os.Stderr, "[%s kernels: %s]\n", name, experiments.SumStats(rs))
	}
	csvOut := func(file string, write func(io.Writer) error) error {
		if csvDir == "" {
			return nil
		}
		f, err := os.Create(filepath.Join(csvDir, file))
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	switch name {
	case "fig1":
		ss, err := ctx.Fig1()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatSeries("Fig. 1: delay increase vs 0C (%) — paper: CP +47%, DSP up to +84% at 100C", ss, "%.1f%%"))
		if err := csvOut("fig1.csv", func(w io.Writer) error { return experiments.WriteSeriesCSV(w, ss) }); err != nil {
			return err
		}
	case "fig2":
		rows, err := ctx.Fig2()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFig2(rows))
		fmt.Println("paper: every device fastest at its own corner; BRAM most corner-sensitive")
		if err := csvOut("fig2.csv", func(w io.Writer) error { return experiments.WriteFig2CSV(w, rows) }); err != nil {
			return err
		}
	case "fig3":
		ss, err := ctx.Fig3()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatSeries("Fig. 3: representative CP delay (ps) vs T — paper: D0 best at 0C (+6.3% over D100), D100 best at 100C (+9.0%), D25 optimal in [20,65]C", ss, "%.1f"))
		if err := csvOut("fig3.csv", func(w io.Writer) error { return experiments.WriteSeriesCSV(w, ss) }); err != nil {
			return err
		}
	case "table1":
		fmt.Println("Table I: architectural parameters")
		fmt.Print(ctx.Table1())
	case "table2":
		chars, err := ctx.Table2()
		if err != nil {
			return err
		}
		fmt.Println("Table II: area (um2) | delay (ps, a+bT) | Pdyn (uW @100MHz, a=1) | Plkg (uW)")
		for _, ch := range chars {
			fmt.Println(ch)
		}
		if err := csvOut("table2.csv", func(w io.Writer) error { return experiments.WriteTable2CSV(w, chars) }); err != nil {
			return err
		}
	case "fig6":
		return benchSuite(ctx.Fig6, "Fig. 6: guardbanding gain at Tamb=25C — paper average 36.5%", "fig6.csv", warnUnconverged, csvOut)
	case "fig7":
		return benchSuite(ctx.Fig7, "Fig. 7: guardbanding gain at Tamb=70C — paper average 14%", "fig7.csv", warnUnconverged, csvOut)
	case "fig8":
		return benchSuite(ctx.Fig8, "Fig. 8: 70C-optimized fabric vs typical at Tamb=70C (both guardbanded) — paper average 6.7%", "fig8.csv", warnUnconverged, csvOut)
	case "fig8sweep":
		// Fig. 8 along the ambient axis: each benchmark's D70-over-D25
		// gain at every ambient, one table per benchmark.
		ambients := make([]float64, 0, 11)
		for t := 0.0; t <= 100; t += 10 {
			ambients = append(ambients, t)
		}
		for _, b := range ctx.Suite() {
			rs, err := ctx.Fig8Sweep(b, ambients)
			if len(rs) > 0 {
				fmt.Print(experiments.FormatBench(
					fmt.Sprintf("Fig. 8 ambient sweep: %s (D70 fabric vs D25, both guardbanded)", b), rs))
				warnUnconverged(rs)
				if cerr := csvOut("fig8sweep_"+b+".csv", func(w io.Writer) error {
					return experiments.WriteBenchCSV(w, rs)
				}); cerr != nil && err == nil {
					err = cerr
				}
			}
			if err != nil {
				return err
			}
		}
	case "thermalcompare":
		rs, err := ctx.ThermalPlaceCompare(thermalAmbient, tp)
		if len(rs) == 0 {
			return err
		}
		title := fmt.Sprintf("Thermal-aware placement vs baseline at Tamb=%.0fC (weight %g)", thermalAmbient, tp.Weight)
		if err != nil {
			title += fmt.Sprintf(" [PARTIAL: %d benchmark(s) finished]", len(rs))
		}
		fmt.Print(experiments.FormatThermalCompare(title, rs))
		if cerr := csvOut("thermalcompare.csv", func(w io.Writer) error {
			return experiments.WriteThermalCompareCSV(w, rs)
		}); cerr != nil && err == nil {
			err = cerr
		}
		return err
	case "energysweep":
		rs, err := ctx.EnergySweep(energyAmbients, targetMHz)
		if len(rs) == 0 {
			return err
		}
		title := fmt.Sprintf("Min-energy guardbanding: minimum safe Vdd at iso-frequency (ambients %v)", energyAmbients)
		if err != nil {
			title += fmt.Sprintf(" [PARTIAL: %d row(s) finished]", len(rs))
		}
		fmt.Print(experiments.FormatEnergySweep(title, rs))
		if inf := experiments.InfeasibleEnergy(rs); len(inf) > 0 {
			fmt.Fprintf(os.Stderr, "taexp: warning: energysweep: target out of reach at nominal rail on: %s\n",
				strings.Join(inf, ", "))
		}
		var stats guardband.Stats
		for _, r := range rs {
			stats.Add(r.Stats)
		}
		fmt.Fprintf(os.Stderr, "[energysweep kernels: %s]\n", stats)
		if cerr := csvOut("energysweep.csv", func(w io.Writer) error {
			return experiments.WriteEnergyCSV(w, rs)
		}); cerr != nil && err == nil {
			err = cerr
		}
		return err
	case "scorecard":
		claims, err := ctx.Scorecard()
		if err != nil {
			return err
		}
		fmt.Println("Reproduction scorecard (paper claim vs measured, with acceptance bands):")
		fmt.Print(experiments.FormatScorecard(claims))
	case "ablations":
		type ab struct {
			title string
			fn    func(float64) ([]experiments.AblationRow, error)
		}
		for _, a := range []ab{
			{"Ablation: deltaT margin (Tamb=25C)", ctx.AblationDeltaT},
			{"Ablation: per-tile vs uniform temperature (Tamb=25C)", ctx.AblationUniformT},
			{"Ablation: leakage-temperature feedback (Tamb=70C)", ctx.AblationNoLeakFeedback},
			{"Ablation: placement effort (Tamb=25C)", ctx.AblationPlacement},
		} {
			amb := 25.0
			if strings.Contains(a.title, "70C") {
				amb = 70
			}
			rows, err := a.fn(amb)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatAblation(a.title, rows))
		}
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}

// benchSuite runs one benchmark-suite experiment and prints its table. On
// cancellation the drivers return the benchmarks that finished alongside
// the error, so the partial table and CSV are still flushed before the
// non-zero exit.
func benchSuite(fn func() ([]experiments.BenchResult, error), title, csvFile string,
	warnUnconverged func([]experiments.BenchResult), csvOut func(string, func(io.Writer) error) error) error {
	rs, err := fn()
	if len(rs) == 0 {
		return err
	}
	if err != nil {
		title += fmt.Sprintf(" [PARTIAL: %d benchmark(s) finished]", len(rs))
	}
	fmt.Print(experiments.FormatBench(title, rs))
	warnUnconverged(rs)
	if cerr := csvOut(csvFile, func(w io.Writer) error { return experiments.WriteBenchCSV(w, rs) }); cerr != nil && err == nil {
		err = cerr
	}
	return err
}
