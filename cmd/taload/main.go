// Command taload is an open-loop load generator for a tafpgad fleet. It
// submits a deterministic mixed stream of job specs at a fixed arrival
// rate (open loop: arrivals do not wait for completions, so queueing
// behaviour is measured honestly), waits for the fleet to drain, and
// reports throughput and latency quantiles computed from the daemons' own
// /metrics histograms — the numbers an operator's Prometheus would show,
// not a client-side stopwatch.
//
//	taload -url http://localhost:8080 -rate 4 -duration 30s \
//	       -metrics http://localhost:8081/metrics,http://localhost:8082/metrics \
//	       -out bench.json
//
// Flags:
//
//	-url u       submission endpoint: a router or a single daemon
//	-rate r      arrival rate in jobs/second (default 4)
//	-duration d  submission window (default 30s)
//	-seed n      seed of the deterministic spec stream (default 1)
//	-bench csv   benchmark pool for generated specs (default sha,diffeq1,ch_intrinsics)
//	-mix f       fraction of sweep (multi-ambient) specs in the stream (default 0.2)
//	-energy-mix f  fraction of min-energy (Vdd-bisection) specs in the
//	             stream (default 0.1); these exercise the voltage-probe
//	             path, which is hotter per job than a guardband point
//	-grid n      distinct ambient points per benchmark (default 512). Large
//	             grids make most specs unique (cold, CPU-bound jobs — a
//	             capacity benchmark); small grids repeat specs (dedup- and
//	             cache-dominated jobs — a serving-overhead benchmark)
//	-metrics csv /metrics URLs to scrape, one per replica (default -url/metrics)
//	-wait d      drain budget after the submission window (default 10m)
//	-out f       write the JSON report here (default stdout)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"time"

	"tafpga/internal/jobs"
	"tafpga/internal/obs"
)

// report is the JSON taload emits.
type report struct {
	Target     string  `json:"target"`
	RatePerSec float64 `json:"rate_per_sec"`
	DurationS  float64 `json:"duration_s"`
	Seed       int64   `json:"seed"`
	Replicas   int     `json:"replicas"`

	Submitted   int `json:"submitted"`
	Accepted    int `json:"accepted"`
	Deduped     int `json:"deduped"`
	SubmitErrs  int `json:"submit_errors"`
	DrainedInMs int `json:"drained_in_ms"`

	JobsCompleted float64 `json:"jobs_completed"`
	JobsFailed    float64 `json:"jobs_failed"`
	WallS         float64 `json:"wall_s"`
	ThroughputPS  float64 `json:"throughput_jobs_per_s"`

	LatencyS struct {
		P50  float64 `json:"p50"`
		P95  float64 `json:"p95"`
		P99  float64 `json:"p99"`
		Mean float64 `json:"mean"`
	} `json:"latency_s"`

	// Batched-sweep activity, from the fleet's tafpgad_sweep_lanes
	// histogram (zero when the daemons run with a serial sweep engine).
	SweepBatches   float64 `json:"sweep_batches"`
	SweepMeanLanes float64 `json:"sweep_mean_lanes"`
}

func main() {
	url := flag.String("url", "http://localhost:8080", "submission endpoint (router or daemon)")
	rate := flag.Float64("rate", 4, "arrival rate, jobs/second (open loop)")
	duration := flag.Duration("duration", 30*time.Second, "submission window")
	seed := flag.Int64("seed", 1, "spec stream seed")
	benchCSV := flag.String("bench", "sha,diffeq1,ch_intrinsics", "benchmark pool")
	mix := flag.Float64("mix", 0.2, "fraction of sweep specs in the stream")
	energyMix := flag.Float64("energy-mix", 0.1, "fraction of min-energy specs in the stream")
	grid := flag.Int("grid", 512, "distinct ambient points per benchmark")
	metricsCSV := flag.String("metrics", "", "/metrics URLs, one per replica (default: -url/metrics)")
	wait := flag.Duration("wait", 10*time.Minute, "drain budget after the submission window")
	out := flag.String("out", "", "report path (empty = stdout)")
	flag.Parse()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "taload: "+format+"\n", args...)
	}
	fail := func(format string, args ...any) {
		logf(format, args...)
		os.Exit(1)
	}

	metricsURLs := []string{strings.TrimSuffix(*url, "/") + "/metrics"}
	if *metricsCSV != "" {
		metricsURLs = strings.Split(*metricsCSV, ",")
	}
	benches := strings.Split(*benchCSV, ",")
	client := &http.Client{Timeout: 30 * time.Second}

	// Baseline scrape: counters and histograms are cumulative, so every
	// number in the report is a delta against this snapshot.
	base, err := scrapeFleet(client, metricsURLs)
	if err != nil {
		fail("baseline scrape: %v", err)
	}

	rep := report{
		Target: *url, RatePerSec: *rate, DurationS: duration.Seconds(),
		Seed: *seed, Replicas: len(metricsURLs),
	}

	// Open-loop arrivals: a ticker fires at the configured rate regardless
	// of how the fleet is keeping up. The spec stream is a pure function of
	// the seed, so two runs against different fleet sizes submit the same
	// work in the same order.
	rng := rand.New(rand.NewSource(*seed))
	interval := time.Duration(float64(time.Second) / *rate)
	if interval <= 0 {
		fail("rate %g is not schedulable", *rate)
	}
	start := time.Now()
	deadline := start.Add(*duration)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for now := start; now.Before(deadline); now = <-ticker.C {
		spec := nextSpec(rng, benches, *mix, *energyMix, *grid)
		body, _ := json.Marshal(spec)
		rep.Submitted++
		resp, err := client.Post(*url+"/v1/jobs", "application/json", strings.NewReader(string(body)))
		if err != nil {
			rep.SubmitErrs++
			continue
		}
		var sr struct {
			Deduped bool `json:"deduped"`
		}
		json.NewDecoder(resp.Body).Decode(&sr)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK && sr.Deduped:
			rep.Accepted++
			rep.Deduped++
		case resp.StatusCode < 400:
			rep.Accepted++
		default:
			rep.SubmitErrs++
		}
	}
	logf("submitted %d specs in %v (%d accepted, %d deduped, %d errors)",
		rep.Submitted, time.Since(start).Round(time.Millisecond), rep.Accepted, rep.Deduped, rep.SubmitErrs)

	// Drain: the fleet is idle when every replica's queued, running, and
	// retry-waiting gauges read zero.
	drainStart := time.Now()
	drainDeadline := drainStart.Add(*wait)
	for {
		cur, err := scrapeFleet(client, metricsURLs)
		if err == nil {
			pending := cur.Sum("tafpgad_jobs_queued") + cur.Sum("tafpgad_jobs_running") + cur.Sum("tafpgad_jobs_retry_waiting")
			if pending == 0 {
				break
			}
		}
		if time.Now().After(drainDeadline) {
			fail("fleet did not drain within %v", *wait)
		}
		time.Sleep(200 * time.Millisecond)
	}
	rep.DrainedInMs = int(time.Since(drainStart).Milliseconds())
	rep.WallS = time.Since(start).Seconds()

	final, err := scrapeFleet(client, metricsURLs)
	if err != nil {
		fail("final scrape: %v", err)
	}
	rep.JobsCompleted = final.Sum("tafpgad_jobs_completed_total") - base.Sum("tafpgad_jobs_completed_total")
	rep.JobsFailed = final.Sum("tafpgad_jobs_failed_total") - base.Sum("tafpgad_jobs_failed_total")
	if rep.WallS > 0 {
		rep.ThroughputPS = rep.JobsCompleted / rep.WallS
	}

	// Latency quantiles come from the fleet's merged duration histogram,
	// baseline-subtracted so only this run's jobs count.
	fh, okF := final.histogram("tafpgad_job_duration_seconds")
	bh, okB := base.histogram("tafpgad_job_duration_seconds")
	if okF {
		h := fh
		if okB {
			if err := subtract(&h, bh); err != nil {
				fail("histogram baseline subtraction: %v", err)
			}
		}
		rep.LatencyS.P50 = round6(h.Quantile(0.50))
		rep.LatencyS.P95 = round6(h.Quantile(0.95))
		rep.LatencyS.P99 = round6(h.Quantile(0.99))
		if h.Count > 0 {
			rep.LatencyS.Mean = round6(h.Sum / float64(h.Count))
		}
	}

	// Batched-sweep lanes: how many lockstep dispatches this run's sweep
	// jobs issued and how wide they were, baseline-subtracted like the
	// latency histogram.
	if lh, ok := final.histogram("tafpgad_sweep_lanes"); ok {
		h := lh
		if bh, ok := base.histogram("tafpgad_sweep_lanes"); ok {
			if err := subtract(&h, bh); err != nil {
				fail("sweep-lane baseline subtraction: %v", err)
			}
		}
		rep.SweepBatches = float64(h.Count)
		if h.Count > 0 {
			rep.SweepMeanLanes = round6(h.Sum / float64(h.Count))
		}
	}

	enc, _ := json.MarshalIndent(rep, "", "  ")
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fail("write %s: %v", *out, err)
	}
	logf("done: %.0f jobs completed, %.3f jobs/s, p50 %.3gs p95 %.3gs p99 %.3gs",
		rep.JobsCompleted, rep.ThroughputPS, rep.LatencyS.P50, rep.LatencyS.P95, rep.LatencyS.P99)
}

// nextSpec draws the next spec of the deterministic stream: guardband
// points on a -grid-sized ambient lattice (grid size sets how often dedup
// and the flow cache see repeats), a -mix fraction of short sweeps, and an
// -energy-mix fraction of min-energy Vdd bisections at the baseline clock.
func nextSpec(rng *rand.Rand, benches []string, mix, energyMix float64, grid int) jobs.Spec {
	if grid < 1 {
		grid = 1
	}
	if grid > 2000 {
		grid = 2000 // keeps every ambient (plus sweep offsets) inside admission bounds
	}
	bench := benches[rng.Intn(len(benches))]
	ambient := 20 + 0.05*float64(rng.Intn(grid)) // 0.05°C lattice from 20°C up
	switch r := rng.Float64(); {
	case r < mix:
		n := 2 + rng.Intn(2)
		amb := make([]float64, n)
		for i := range amb {
			amb[i] = ambient + 10*float64(i)
		}
		return jobs.Spec{Kind: jobs.KindSweep, Benchmark: bench, Ambients: amb}
	case r < mix+energyMix:
		// One- or two-ambient min-energy searches at the benchmark's own
		// baseline clock (TargetMHz 0); the second point rides 10°C hotter so
		// a sweep shares its bisection derivations through the VddLab.
		n := 1 + rng.Intn(2)
		amb := make([]float64, n)
		for i := range amb {
			amb[i] = ambient + 10*float64(i)
		}
		return jobs.Spec{Kind: jobs.KindMinEnergy, Benchmark: bench, Ambients: amb}
	default:
		return jobs.Spec{Kind: jobs.KindGuardband, Benchmark: bench, AmbientC: ambient}
	}
}

// fleetScrape is the concatenation of every replica's parsed /metrics.
type fleetScrape struct {
	scrapes []*obs.Scrape
}

func scrapeFleet(client *http.Client, urls []string) (*fleetScrape, error) {
	out := &fleetScrape{}
	for _, u := range urls {
		resp, err := client.Get(strings.TrimSpace(u))
		if err != nil {
			return nil, fmt.Errorf("scrape %s: %w", u, err)
		}
		sc, err := obs.ParseScrape(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", u, err)
		}
		out.scrapes = append(out.scrapes, sc)
	}
	return out, nil
}

// Sum totals a counter or gauge family across the fleet.
func (f *fleetScrape) Sum(name string) float64 {
	var total float64
	for _, sc := range f.scrapes {
		total += sc.Sum(name)
	}
	return total
}

// histogram merges a histogram family across the fleet.
func (f *fleetScrape) histogram(name string) (obs.HistogramSnapshot, bool) {
	var merged obs.HistogramSnapshot
	found := false
	for _, sc := range f.scrapes {
		if h, ok := sc.HistogramFrom(name); ok {
			if err := merged.Merge(h); err != nil {
				return obs.HistogramSnapshot{}, false
			}
			found = true
		}
	}
	return merged, found
}

// subtract removes a baseline snapshot from h bucket-wise.
func subtract(h *obs.HistogramSnapshot, base obs.HistogramSnapshot) error {
	if len(base.Counts) == 0 {
		return nil
	}
	if len(h.Counts) != len(base.Counts) {
		return fmt.Errorf("bucket count mismatch: %d vs %d", len(h.Counts), len(base.Counts))
	}
	for i := range h.Counts {
		if base.Counts[i] > h.Counts[i] {
			return fmt.Errorf("baseline bucket %d exceeds final (%d > %d)", i, base.Counts[i], h.Counts[i])
		}
		h.Counts[i] -= base.Counts[i]
	}
	h.Sum -= base.Sum
	if base.Count > h.Count {
		return fmt.Errorf("baseline count exceeds final")
	}
	h.Count -= base.Count
	return nil
}

func round6(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Round(v*1e6) / 1e6
}
