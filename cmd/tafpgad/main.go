// Command tafpgad serves guardband and experiment runs over HTTP: jobs are
// submitted as JSON specs, queued FIFO into a bounded worker pool,
// deduplicated by canonical content key, and observable while they run via
// an NDJSON event stream and a Prometheus /metrics endpoint.
//
//	tafpgad [flags]
//
// Flags:
//
//	-addr a        listen address (default :8080)
//	-scale f       benchmark scale relative to the published sizes (default 1/16)
//	-w n           router channel-width override (default: Table I's 320)
//	-effort f      placement effort (default 1.0)
//	-bench csv     restrict figure jobs to a comma-separated benchmark list
//	-parallel n    per-job benchmark fan-out workers (0 = GOMAXPROCS)
//	-workers n     concurrent jobs (default 1)
//	-queue n       queued-job bound before 429s (default 64)
//	-ttl d         how long finished jobs stay retrievable (default 15m)
//	-flowcache d   on-disk place-and-route cache shared across jobs and runs
//	-drain d       graceful-shutdown budget before running jobs are
//	               hard-cancelled (default 10m)
//
// Submit, watch, and cancel:
//
//	curl -s localhost:8080/v1/jobs -d '{"kind":"guardband","benchmark":"sha","ambient_c":25}'
//	curl -s localhost:8080/v1/jobs/j-000001/events
//	curl -s -X DELETE localhost:8080/v1/jobs/j-000001
//
// SIGINT or SIGTERM drains: new submissions are refused, queued and running
// jobs finish (up to -drain), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tafpga/internal/jobs"
	"tafpga/internal/obs"
	"tafpga/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	scale := flag.Float64("scale", 1.0/16, "benchmark scale")
	width := flag.Int("w", 0, "router channel-width override (0 = Table I)")
	effort := flag.Float64("effort", 1.0, "placement effort")
	benchCSV := flag.String("bench", "", "comma-separated benchmark subset for figure jobs")
	parallel := flag.Int("parallel", 0, "per-job benchmark fan-out workers (0 = GOMAXPROCS)")
	workers := flag.Int("workers", 1, "concurrent jobs")
	queue := flag.Int("queue", 64, "queued-job bound")
	ttl := flag.Duration("ttl", 15*time.Minute, "finished-job retention")
	flowcache := flag.String("flowcache", "", "directory for the on-disk place-and-route cache")
	drain := flag.Duration("drain", 10*time.Minute, "graceful-shutdown budget for running jobs")
	flag.Parse()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "tafpgad: "+format+"\n", args...)
	}

	cfg := jobs.RunnerConfig{
		Scale:         *scale,
		ChannelTracks: *width,
		PlaceEffort:   *effort,
		BenchWorkers:  *parallel,
		FlowCacheDir:  *flowcache,
	}
	if *benchCSV != "" {
		cfg.Benchmarks = strings.Split(*benchCSV, ",")
	}
	runner := jobs.NewRunner(cfg)

	reg := obs.NewRegistry()
	mgr := jobs.New(runner.Run, jobs.Options{
		Workers:  *workers,
		MaxQueue: *queue,
		TTL:      *ttl,
		Registry: reg,
	})
	srv := server.New(mgr, reg)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// Serve immediately; /readyz flips once the device library is warm so
	// the first job does not pay the sizing latency.
	go func() {
		start := time.Now()
		if err := runner.Warm(); err != nil {
			logf("warmup failed: %v", err)
			os.Exit(1)
		}
		srv.SetReady(true)
		logf("ready: device library warm in %v", time.Since(start).Round(time.Millisecond))
	}()

	// TTL janitor: Submit sweeps lazily, this catches idle periods.
	stopJanitor := make(chan struct{})
	go func() {
		t := time.NewTicker(*ttl / 2)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				mgr.EvictExpired()
			case <-stopJanitor:
				return
			}
		}
	}()

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logf("listening on %s (scale %g, %d worker(s), queue %d)", *addr, *scale, *workers, *queue)

	select {
	case err := <-errCh:
		logf("serve: %v", err)
		os.Exit(1)
	case <-sigCtx.Done():
	}
	stop() // restore default signal handling: a second signal kills us

	// Graceful drain: unready first so load balancers stop routing here,
	// then let queued and running jobs finish (event streams close with
	// their jobs), then close idle HTTP connections.
	logf("signal received, draining (budget %v)", *drain)
	srv.SetDraining(true)
	close(stopJanitor)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := mgr.Drain(drainCtx); err != nil {
		logf("drain: hard-cancelled running jobs: %v", err)
	} else {
		logf("drained cleanly")
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logf("shutdown: %v", err)
	}
	<-errCh // ListenAndServe has returned http.ErrServerClosed
	logf("bye")
}
