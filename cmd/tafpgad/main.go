// Command tafpgad serves guardband and experiment runs over HTTP: jobs are
// submitted as JSON specs, queued FIFO into a bounded worker pool,
// deduplicated by canonical content key, and observable while they run via
// an NDJSON event stream and a Prometheus /metrics endpoint.
//
//	tafpgad [flags]
//
// Flags:
//
//	-addr a        listen address (default :8080)
//	-scale f       benchmark scale relative to the published sizes (default 1/16)
//	-w n           router channel-width override (default: Table I's 320)
//	-effort f      placement effort (default 1.0)
//	-bench csv     restrict figure jobs to a comma-separated benchmark list
//	-parallel n    per-job benchmark fan-out workers (0 = GOMAXPROCS)
//	-sweep-batch n lockstep lanes per batched guardband dispatch in sweep
//	               jobs; per-lane results bit-identical (0/1 = serial)
//	-workers n     concurrent jobs (default 1)
//	-queue n       queued-job bound before 429s (default 64)
//	-ttl d         how long finished jobs stay retrievable (default 15m)
//	-flowcache d   on-disk place-and-route cache shared across jobs and runs
//	-drain d       graceful-shutdown budget before running jobs are
//	               hard-cancelled (default 10m)
//	-state-dir d   durable job state: jobs are journaled to d/journal.ndjson
//	               and recovered after a crash or restart (default: none,
//	               jobs are in-memory only)
//	-retries n     attempts per job for transient failures (default 3;
//	               1 disables retry)
//	-retry-base d  base retry backoff, doubled per attempt (default 500ms)
//	-retry-max d   retry backoff cap (default 30s)
//	-faults s      fault-injection spec "point=prob[:limit],..." for crash
//	               and retry testing (also via TAFPGA_FAULTS)
//	-faults-seed n deterministic seed for -faults (default 1)
//
// Fleet flags:
//
//	-replica s     this replica's name in the fleet (default: hostname)
//	-peers csv     fleet members as "name=url,..." — enables HTTP peer fill
//	               of the flow cache (a local miss asks the key's HRW owner
//	               before rebuilding)
//	-route         run as the cluster router instead of a replica: forward
//	               POST /v1/jobs to each spec's HRW owner (failing over down
//	               the ranking), proxy job reads and event streams, fan out
//	               listings across -peers
//
// Submit, watch, and cancel:
//
//	curl -s localhost:8080/v1/jobs -d '{"kind":"guardband","benchmark":"sha","ambient_c":25}'
//	curl -s localhost:8080/v1/jobs/j-000001/events
//	curl -s -X DELETE localhost:8080/v1/jobs/j-000001
//
// SIGINT or SIGTERM drains: new submissions are refused, queued and running
// jobs finish (up to -drain), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"tafpga/internal/cluster"
	"tafpga/internal/faults"
	"tafpga/internal/jobs"
	"tafpga/internal/obs"
	"tafpga/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	scale := flag.Float64("scale", 1.0/16, "benchmark scale")
	width := flag.Int("w", 0, "router channel-width override (0 = Table I)")
	effort := flag.Float64("effort", 1.0, "placement effort")
	benchCSV := flag.String("bench", "", "comma-separated benchmark subset for figure jobs")
	parallel := flag.Int("parallel", 0, "per-job benchmark fan-out workers (0 = GOMAXPROCS)")
	routeWorkers := flag.Int("route-workers", 0, "PathFinder search workers per flow build; byte-identical results (0 = GOMAXPROCS, 1 = serial)")
	sweepBatch := flag.Int("sweep-batch", 0, "lockstep lanes per batched guardband dispatch in sweep jobs; bit-identical per lane (0/1 = serial)")
	workers := flag.Int("workers", 1, "concurrent jobs")
	queue := flag.Int("queue", 64, "queued-job bound")
	ttl := flag.Duration("ttl", 15*time.Minute, "finished-job retention")
	flowcache := flag.String("flowcache", "", "directory for the on-disk place-and-route cache")
	drain := flag.Duration("drain", 10*time.Minute, "graceful-shutdown budget for running jobs")
	stateDir := flag.String("state-dir", "", "directory for the durable job journal (empty = in-memory only)")
	retries := flag.Int("retries", 3, "attempts per job for transient failures (1 = no retry)")
	retryBase := flag.Duration("retry-base", 500*time.Millisecond, "base retry backoff (doubled per attempt)")
	retryMax := flag.Duration("retry-max", 30*time.Second, "retry backoff cap")
	faultSpec := flag.String("faults", "", `fault-injection spec "point=prob[:limit],..." (testing)`)
	faultSeed := flag.Int64("faults-seed", 1, "seed for -faults")
	replica := flag.String("replica", "", "this replica's fleet name (default: hostname)")
	peersCSV := flag.String("peers", "", `fleet members as "name=url,..." (enables flow-cache peer fill)`)
	route := flag.Bool("route", false, "run as the cluster router over -peers instead of a replica")
	flag.Parse()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "tafpgad: "+format+"\n", args...)
	}

	if *replica == "" {
		if host, err := os.Hostname(); err == nil && host != "" {
			*replica = host
		} else {
			*replica = "tafpgad"
		}
	}

	if *route {
		runRouter(*addr, *replica, *peersCSV, logf)
		return
	}

	// Fault injection: the flag wins over the environment so a test harness
	// can override a stale TAFPGA_FAULTS.
	if *faultSpec != "" {
		if err := faults.Enable(*faultSpec, *faultSeed); err != nil {
			logf("bad -faults: %v", err)
			os.Exit(2)
		}
		logf("fault injection enabled: %s (seed %d)", *faultSpec, *faultSeed)
	} else if err := faults.EnableFromEnv(); err != nil {
		logf("bad TAFPGA_FAULTS: %v", err)
		os.Exit(2)
	}

	reg := obs.NewRegistry()
	reg.GaugeL("tafpgad_build_info",
		"Process identity; the value is always 1 — the information rides in the labels.",
		fmt.Sprintf("replica=%q,addr=%q,role=%q,go=%q", *replica, *addr, "replica", runtime.Version())).Set(1)

	cfg := jobs.RunnerConfig{
		Scale:         *scale,
		ChannelTracks: *width,
		PlaceEffort:   *effort,
		BenchWorkers:  *parallel,
		RouteWorkers:  *routeWorkers,
		SweepBatch:    *sweepBatch,
		FlowCacheDir:  *flowcache,
		Obs:           reg,
	}
	if *benchCSV != "" {
		cfg.Benchmarks = strings.Split(*benchCSV, ",")
	}
	runner := jobs.NewRunner(cfg)

	// Fleet cache fill: a local flow-cache miss asks the key's HRW owner
	// (then the rest of the ranking) for its raw gob entry before paying a
	// rebuild. Corrupt or torn payloads are rejected by the cache layer and
	// never adopted, so a bad peer cannot poison the local store.
	if *peersCSV != "" {
		ring, err := cluster.ParseRing(*peersCSV)
		if err != nil {
			logf("bad -peers: %v", err)
			os.Exit(2)
		}
		peerFetch := reg.Counter("tafpgad_cache_peer_fetches_total", "Peer cache-fill HTTP requests issued on local misses.")
		peerHits := reg.Counter("tafpgad_cache_peer_hits_total", "Local flow-cache misses served by a fleet peer.")
		peerErrs := reg.Counter("tafpgad_cache_peer_errors_total", "Peer cache-fill requests that failed at transport level.")
		peerClient := &http.Client{Timeout: 10 * time.Second}
		self := *replica
		runner.Cache().SetPeerFill(func(key string) ([]byte, error) {
			for _, rep := range ring.Rank(key) {
				if rep.Name == self {
					continue // the local miss is already established
				}
				peerFetch.Inc()
				resp, err := peerClient.Get(rep.URL + "/v1/cache/" + key)
				if err != nil {
					peerErrs.Inc()
					continue
				}
				if resp.StatusCode != http.StatusOK {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					continue
				}
				raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
				resp.Body.Close()
				if err != nil {
					peerErrs.Inc()
					continue
				}
				peerHits.Inc()
				return raw, nil
			}
			return nil, fmt.Errorf("no fleet peer holds %s", key)
		})
		logf("flow-cache peer fill enabled across %d fleet member(s)", len(ring.Replicas()))
	}

	// Durable state: with -state-dir, every job transition is journaled and
	// a restart replays the journal — finished results come back without
	// recompute, interrupted jobs re-enter the queue.
	var journal *jobs.Journal
	if *stateDir != "" {
		var err error
		journal, err = jobs.OpenJournal(*stateDir)
		if err != nil {
			logf("state dir: %v", err)
			os.Exit(1)
		}
		defer journal.Close()
	}

	mgr := jobs.New(runner.Run, jobs.Options{
		Workers:  *workers,
		MaxQueue: *queue,
		TTL:      *ttl,
		Registry: reg,
		Journal:  journal,
		Retry: jobs.RetryPolicy{
			MaxAttempts: *retries,
			BaseBackoff: *retryBase,
			MaxBackoff:  *retryMax,
		},
	})
	if journal != nil {
		restored, requeued := mgr.RecoveryStats()
		logf("journal %s: %d finished job(s) restored, %d interrupted job(s) requeued",
			journal.Path(), restored, requeued)
	}
	srv := server.New(mgr, reg)
	srv.ServeCache(runner.Cache())
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// Serve immediately; /readyz flips once the device library is warm so
	// the first job does not pay the sizing latency.
	go func() {
		start := time.Now()
		if err := runner.Warm(); err != nil {
			logf("warmup failed: %v", err)
			os.Exit(1)
		}
		srv.SetReady(true)
		logf("ready: device library warm in %v", time.Since(start).Round(time.Millisecond))
	}()

	// TTL janitor: Submit sweeps lazily, this catches idle periods.
	stopJanitor := make(chan struct{})
	go func() {
		t := time.NewTicker(*ttl / 2)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				mgr.EvictExpired()
			case <-stopJanitor:
				return
			}
		}
	}()

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logf("listening on %s (scale %g, %d worker(s), queue %d)", *addr, *scale, *workers, *queue)

	select {
	case err := <-errCh:
		logf("serve: %v", err)
		os.Exit(1)
	case <-sigCtx.Done():
	}
	stop() // restore default signal handling: a second signal kills us

	// Graceful drain: unready first so load balancers stop routing here,
	// then let queued and running jobs finish (event streams close with
	// their jobs), then close idle HTTP connections.
	logf("signal received, draining (budget %v)", *drain)
	srv.SetDraining(true)
	close(stopJanitor)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := mgr.Drain(drainCtx); err != nil {
		logf("drain: hard-cancelled running jobs: %v", err)
	} else {
		logf("drained cleanly")
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logf("shutdown: %v", err)
	}
	<-errCh // ListenAndServe has returned http.ErrServerClosed
	logf("bye")
}

// runRouter serves the fleet front-end: the same /v1 surface as a replica,
// forwarded across -peers by rendezvous hashing on job content keys.
func runRouter(addr, name, peersCSV string, logf func(string, ...any)) {
	if peersCSV == "" {
		logf("-route requires -peers")
		os.Exit(2)
	}
	ring, err := cluster.ParseRing(peersCSV)
	if err != nil {
		logf("bad -peers: %v", err)
		os.Exit(2)
	}
	reg := obs.NewRegistry()
	reg.GaugeL("tafpgad_build_info",
		"Process identity; the value is always 1 — the information rides in the labels.",
		fmt.Sprintf("replica=%q,addr=%q,role=%q,go=%q", name, addr, "router", runtime.Version())).Set(1)
	rt := cluster.NewRouter(ring, cluster.RouterOptions{Registry: reg})
	httpSrv := &http.Server{Addr: addr, Handler: rt.Handler()}

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logf("routing on %s across %d replica(s)", addr, len(ring.Replicas()))

	select {
	case err := <-errCh:
		logf("serve: %v", err)
		os.Exit(1)
	case <-sigCtx.Done():
	}
	stop()
	logf("signal received, shutting down router")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logf("shutdown: %v", err)
	}
	<-errCh
	logf("bye")
}
