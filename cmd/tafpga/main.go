// Command tafpga runs the thermal-aware CAD flow on one benchmark:
//
//	tafpga [flags] <benchmark>
//	tafpga -list
//
// It sizes (or reuses) a device for the requested corner, implements the
// design (pack → place → route), runs the paper's Algorithm 1 guardbanding
// at the given ambient temperature, and reports the thermally-aware clock
// against the conventional worst-case baseline, the converged thermal map
// statistics, and the critical-path composition.
//
// Flags:
//
//	-list         list the available benchmarks and their profiles
//	-scale f      benchmark scale (default 1/16 of the published size)
//	-corner f     device sizing corner in °C (default 25)
//	-ambient f    ambient temperature for guardbanding (default 25)
//	-w n          router channel-width override (0 = Table I's 320)
//	-route-workers n  PathFinder search workers (0 = GOMAXPROCS, 1 = serial);
//	              the routed result is byte-identical for every value
//	-effort f     placement effort (default 1.0)
//	-seed n       random seed override (default: derived from the name)
//	-blif path    write the generated netlist as BLIF to path
//	-sweep spec   guardband an ambient sweep instead of one point:
//	              "lo:hi:step" (e.g. 0:100:10) or a comma list (e.g. 25,45,70)
//	-objective s  guardband objective (default "fmax"): "min-energy" keeps
//	              the clock at -target and instead bisects the minimum safe
//	              core rail on the same routed implementation, converting the
//	              recovered thermal margin into supply/energy savings
//	-target f     min-energy iso-frequency target in MHz (0 = the
//	              conventional Tworst=100°C baseline clock, i.e. the
//	              frequency a thermally-oblivious flow would have shipped)
//	-parallel n   sweep workers (0 = GOMAXPROCS, 1 = serial)
//	-sweep-batch n  run the sweep's ambients in lockstep batches of n lanes
//	              through the batched guardband engine (0/1 = serial workers);
//	              per-lane results are bit-identical to the serial sweep
//	-timeout d    abort after this duration (0 = none); a sweep still prints
//	              the rows that finished
//	-thermal-weight f  weight of the thermal term in the placement objective
//	              (0 = off, today's thermally-oblivious placer); with a
//	              positive weight the annealer trades wirelength for a
//	              flatter on-die temperature profile
//	-thermal-radius n  thermal influence kernel truncation radius in tiles
//	              (0 = the estimator default)
//	-flowcache d  cache place-and-route results in directory d, keyed by
//	              netlist/arch/seed/effort/router content (and the thermal
//	              placement knobs when enabled), so repeated invocations
//	              skip the implementation front-end
//	-cpuprofile f write a CPU profile of the run to f (go tool pprof)
//	-memprofile f write a heap profile at exit to f
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"tafpga"
	"tafpga/internal/bench"
	"tafpga/internal/coffe"
	"tafpga/internal/flow"
	"tafpga/internal/guardband"
	"tafpga/internal/netlist"
	"tafpga/internal/sta"
)

func main() {
	list := flag.Bool("list", false, "list benchmarks")
	scale := flag.Float64("scale", bench.DefaultScale, "benchmark scale")
	corner := flag.Float64("corner", 25, "device sizing corner °C")
	ambient := flag.Float64("ambient", 25, "ambient temperature °C")
	width := flag.Int("w", 0, "router channel-width override")
	routeWorkers := flag.Int("route-workers", 0, "PathFinder search workers; byte-identical results (0 = GOMAXPROCS, 1 = serial)")
	effort := flag.Float64("effort", 1.0, "placement effort")
	seed := flag.Int64("seed", 0, "seed override")
	blifOut := flag.String("blif", "", "write generated netlist as BLIF")
	blifIn := flag.String("in", "", "implement this BLIF file instead of a generated benchmark")
	vdd := flag.Float64("vdd", 0, "core supply override in volts (0 = Table I's 0.8 V)")
	paths := flag.Int("paths", 0, "report the N worst timing endpoints")
	powerRep := flag.Bool("power", false, "report the power breakdown at the converged operating point")
	thermalWeight := flag.Float64("thermal-weight", 0, "thermal placement objective weight (0 = off)")
	thermalRadius := flag.Int("thermal-radius", 0, "thermal kernel truncation radius in tiles (0 = default)")
	sweep := flag.String("sweep", "", `ambient sweep: "lo:hi:step" or comma list of °C`)
	objective := flag.String("objective", "fmax", `guardband objective: "fmax" or "min-energy"`)
	target := flag.Float64("target", 0, "min-energy iso-frequency target in MHz (0 = worst-case baseline clock)")
	flowcache := flag.String("flowcache", "", "directory for the on-disk place-and-route cache (reused across runs)")
	parallel := flag.Int("parallel", 0, "sweep workers (0 = GOMAXPROCS, 1 = serial)")
	sweepBatch := flag.Int("sweep-batch", 0, "lockstep lanes per batched guardband dispatch; bit-identical per lane (0/1 = serial)")
	timeout := flag.Duration("timeout", 0, "abort after this duration (0 = none)")
	cpuprofile := flag.String("cpuprofile", "", "write CPU profile to file")
	memprofile := flag.String("memprofile", "", "write heap profile to file at exit")
	flag.Parse()

	// SIGINT/SIGTERM (and -timeout) cancel the flow and Algorithm 1 at
	// their next stage or iteration boundary; a sweep still prints the
	// ambients that finished.
	runCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(runCtx, *timeout)
		defer cancel()
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		die(err)
		die(pprof.StartCPUProfile(f))
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tafpga:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "tafpga:", err)
			}
		}()
	}

	if *list {
		fmt.Println("benchmark           LUTs    FFs  BRAMs  DSPs  depth")
		for _, p := range tafpga.Benchmarks() {
			fmt.Printf("%-18s %6d %6d %6d %5d %6d\n", p.Name, p.LUTs, p.FFs, p.BRAMs, p.DSPs, p.Depth)
		}
		return
	}
	if flag.NArg() != 1 && *blifIn == "" {
		fmt.Fprintln(os.Stderr, "usage: tafpga [flags] <benchmark>   (see -list; or -in design.blif)")
		os.Exit(2)
	}
	name := "external"
	if *blifIn == "" {
		name = flag.Arg(0)
	}

	// Validate the sweep spec and objective up front: a typo must not cost a
	// sizing run.
	var ambients []float64
	if *sweep != "" {
		var err error
		ambients, err = parseSweep(*sweep)
		die(err)
	}
	if *objective != "fmax" && *objective != "min-energy" {
		fmt.Fprintf(os.Stderr, "tafpga: unknown objective %q (want fmax or min-energy)\n", *objective)
		os.Exit(2)
	}

	cfg := tafpga.NewConfig()
	if *vdd > 0 {
		var err error
		cfg, err = cfg.AtVdd(*vdd)
		die(err)
		fmt.Printf("core rail set to %.2f V\n", *vdd)
	}
	fmt.Printf("sizing device for %.0f°C…\n", *corner)
	dev, err := cfg.SizeDevice(*corner)
	die(err)

	var nl *tafpga.Netlist
	if *blifIn != "" {
		f, err := os.Open(*blifIn)
		die(err)
		nl, err = netlist.ParseBLIF(f)
		die(err)
		die(f.Close())
		fmt.Printf("%s (from %s): %v\n", nl.Name, *blifIn, nl.Stats())
	} else {
		nl, err = tafpga.GenerateBenchmark(name, *scale)
		die(err)
		fmt.Printf("%s @ scale %.4g: %v\n", name, *scale, nl.Stats())
	}

	if *blifOut != "" {
		f, err := os.Create(*blifOut)
		die(err)
		die(nl.WriteBLIF(f))
		die(f.Close())
		fmt.Println("wrote", *blifOut)
	}

	opts := flow.DefaultOptions()
	opts.ChannelTracks = *width
	opts.Router.Workers = *routeWorkers
	opts.PlaceEffort = *effort
	opts.ThermalPlace = flow.ThermalPlace{Weight: *thermalWeight, KernelRadius: *thermalRadius}
	if *seed != 0 {
		opts.Seed = *seed
	} else {
		opts.Seed = bench.SeedFor(name)
	}
	if *flowcache != "" {
		opts.Cache = flow.NewCache(*flowcache)
	}
	opts.Ctx = runCtx
	im, err := tafpga.Implement(nl, dev, opts)
	die(err)
	if im.Routed.Graph != nil {
		fmt.Printf("implemented on %s (router: %d iterations, %s)\n", im.Grid, im.Routed.Iters, im.Routed.Graph)
	} else {
		fmt.Printf("implemented on %s (router: %d iterations, from flow cache)\n", im.Grid, im.Routed.Iters)
	}

	if *objective == "min-energy" {
		if *sweep == "" {
			ambients = []float64{*ambient}
		}
		runMinEnergy(runCtx, im, ambients, *target)
		return
	}

	if *sweep != "" {
		if *sweepBatch > 1 {
			runSweepBatch(runCtx, im, ambients, *sweepBatch)
		} else {
			runSweep(runCtx, im, ambients, *parallel)
		}
		return
	}

	gbOpts := tafpga.GuardbandOptions(*ambient)
	gbOpts.Ctx = runCtx
	res, err := im.Guardband(gbOpts)
	die(err)

	fmt.Printf("\nThermal-aware guardbanding at Tamb = %.0f°C (Algorithm 1):\n", *ambient)
	fmt.Printf("  fmax (thermal-aware)  %8.1f MHz\n", res.FmaxMHz)
	fmt.Printf("  fmax (Tworst=100°C)   %8.1f MHz\n", res.BaselineMHz)
	fmt.Printf("  improvement           %8.1f %%\n", res.GainPct)
	fmt.Printf("  converged in          %8d iterations\n", res.Iterations)
	fmt.Printf("  mean rise / spread    %8.2f / %.2f °C\n", res.RiseC, res.SpreadC)
	fmt.Printf("  kernels               %s\n", res.Stats)
	if !res.Converged {
		fmt.Println("  WARNING: iteration budget exhausted before the temperature map settled;")
		fmt.Println("           the figures above are the last iterate, not a converged point")
	}

	fmt.Println("\nCritical-path composition at the converged corner (ps):")
	kinds := make([]coffe.ResourceKind, 0, len(res.Breakdown))
	for k := range res.Breakdown {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Printf("  %-12s %8.1f\n", k, res.Breakdown[k])
	}

	if *paths > 0 {
		fmt.Printf("\nWorst %d timing endpoints at the converged corner:\n", *paths)
		fmt.Print(sta.FormatPaths(im.Timing.TopPaths(res.Temps, *paths)))
	}

	if *powerRep {
		b := im.Power.Report(res.FmaxMHz, res.Temps)
		fmt.Printf("\nPower at %.1f MHz, converged temperatures (µW):\n", res.FmaxMHz)
		fmt.Printf("  logic dynamic      %10.1f\n", b.DynLogicUW)
		fmt.Printf("  routing dynamic    %10.1f\n", b.DynRoutingUW)
		fmt.Printf("  macro dynamic      %10.1f\n", b.DynMacroUW)
		fmt.Printf("  clocking           %10.1f\n", b.DynClockingUW)
		fmt.Printf("  leakage            %10.1f\n", b.LeakUW)
		fmt.Printf("  total              %10.1f\n", b.TotalUW())
	}
}

// parseSweep parses "lo:hi:step" or a comma-separated list of ambients.
func parseSweep(spec string) ([]float64, error) {
	if strings.Contains(spec, ":") {
		parts := strings.Split(spec, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("sweep spec %q: want lo:hi:step", spec)
		}
		var v [3]float64
		for i, p := range parts {
			f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("sweep spec %q: %w", spec, err)
			}
			v[i] = f
		}
		lo, hi, step := v[0], v[1], v[2]
		if step <= 0 || hi < lo {
			return nil, fmt.Errorf("sweep spec %q: need hi >= lo and step > 0", spec)
		}
		var out []float64
		for t := lo; t <= hi+1e-9; t += step {
			out = append(out, t)
		}
		return out, nil
	}
	var out []float64
	for _, p := range strings.Split(spec, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("sweep spec %q: %w", spec, err)
		}
		out = append(out, f)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sweep spec %q: empty", spec)
	}
	return out, nil
}

// runSweep guardbands the implementation at every ambient on a bounded
// worker pool (Algorithm 1 only reads the implementation, so the runs are
// independent) and prints the table in sweep order. Cancellation stops the
// claim loop; finished rows still print, unfinished ones report the error.
func runSweep(ctx context.Context, im *flow.Implementation, ambients []float64, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ambients) {
		workers = len(ambients)
	}
	results := make([]*guardband.Result, len(ambients))
	errs := make([]error, len(ambients))
	var (
		mu   sync.Mutex
		next int
		wg   sync.WaitGroup
	)
	wg.Add(workers)
	for k := 0; k < workers; k++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(ambients) || ctx.Err() != nil {
					return
				}
				o := tafpga.GuardbandOptions(ambients[i])
				o.Ctx = ctx
				results[i], errs[i] = im.Guardband(o)
			}
		}()
	}
	wg.Wait()

	fmt.Printf("\nThermal-aware guardbanding ambient sweep (%d workers):\n", workers)
	fmt.Printf("%10s %12s %12s %8s %7s %8s %9s\n", "Tamb(C)", "fmax(MHz)", "worst(MHz)", "gain(%)", "iters", "rise(C)", "converged")
	var agg guardband.Stats
	for i, amb := range ambients {
		if errs[i] != nil {
			fmt.Printf("%10.1f  error: %v\n", amb, errs[i])
			continue
		}
		if results[i] == nil { // claimed out by cancellation before running
			fmt.Printf("%10.1f  not run: %v\n", amb, ctx.Err())
			continue
		}
		r := results[i]
		agg.Add(r.Stats)
		fmt.Printf("%10.1f %12.1f %12.1f %8.1f %7d %8.2f %9t\n",
			amb, r.FmaxMHz, r.BaselineMHz, r.GainPct, r.Iterations, r.RiseC, r.Converged)
	}
	fmt.Printf("kernels: %s\n", agg)
}

// runSweepBatch guardbands the ambients in lockstep chunks of batch lanes
// through guardband.RunBatch, each chunk warm-started from the previous
// chunk's converged solver output. Every row is bit-identical to runSweep's;
// only wall time and the kernel accounting (batch counters included)
// change. A chunk error still prints the completed rows.
func runSweepBatch(ctx context.Context, im *flow.Implementation, ambients []float64, batch int) {
	fmt.Printf("\nThermal-aware guardbanding ambient sweep (batch %d):\n", batch)
	fmt.Printf("%10s %12s %12s %8s %7s %8s %9s\n", "Tamb(C)", "fmax(MHz)", "worst(MHz)", "gain(%)", "iters", "rise(C)", "converged")
	var agg guardband.Stats
	var seed []float64
	var failed error
	for lo := 0; lo < len(ambients) && failed == nil; lo += batch {
		hi := min(lo+batch, len(ambients))
		o := tafpga.GuardbandOptions(ambients[lo])
		o.Ctx = ctx
		o.ThermalSeed = seed
		rs, err := im.GuardbandBatch(ambients[lo:hi], o)
		if err != nil {
			failed = err
			break
		}
		seed = rs[len(rs)-1].SeedTemps
		for i, r := range rs {
			agg.Add(r.Stats)
			fmt.Printf("%10.1f %12.1f %12.1f %8.1f %7d %8.2f %9t\n",
				ambients[lo+i], r.FmaxMHz, r.BaselineMHz, r.GainPct, r.Iterations, r.RiseC, r.Converged)
		}
	}
	if failed != nil {
		fmt.Printf("  error: %v\n", failed)
	}
	fmt.Printf("kernels: %s\n", agg)
}

// runMinEnergy runs the min-energy guardband objective: per ambient, bisect
// the minimum safe core rail that still meets the iso-frequency target
// (0 = that run's conventional worst-case clock) on the same routed
// implementation. One VddLab shares every per-rail model derivation across
// ambients. A single ambient streams the probe-by-probe search; a -sweep
// prints one row per ambient.
func runMinEnergy(ctx context.Context, im *flow.Implementation, ambients []float64, targetMHz float64) {
	lab := flow.NewVddLab(im)
	single := len(ambients) == 1
	if !single {
		label := "per-ambient worst-case baseline"
		if targetMHz > 0 {
			label = fmt.Sprintf("%.1f MHz", targetMHz)
		}
		fmt.Printf("\nMin-energy guardbanding ambient sweep (target %s):\n", label)
		fmt.Printf("%10s %12s %9s %9s %12s %12s %8s %8s %7s\n",
			"Tamb(C)", "target(MHz)", "Vnom(V)", "Vmin(V)", "Pnom(uW)", "Pmin(uW)", "save(%)", "pJ/cyc", "probes")
	}
	var agg guardband.Stats
	for _, amb := range ambients {
		opts := guardband.DefaultEnergyOptions(amb)
		opts.Ctx = ctx
		opts.TargetMHz = targetMHz
		if single {
			fmt.Printf("\nMin-energy guardbanding at Tamb = %.0f°C (bisecting the core rail):\n", amb)
			opts.OnProbe = func(p guardband.EnergyProbe) {
				if p.NonConducting {
					fmt.Printf("  probe %2d  %.3f V  non-conducting at this corner (cold search bound)\n", p.Probe, p.VddV)
					return
				}
				verdict := "infeasible"
				if p.Feasible {
					verdict = "feasible"
				}
				fmt.Printf("  probe %2d  %.3f V  fmax %8.1f MHz  %10.1f µW  %-10s (%d iters)\n",
					p.Probe, p.VddV, p.FmaxMHz, p.PowerUW, verdict, p.Iterations)
			}
		}
		res, err := lab.MinEnergy(opts)
		if err != nil {
			if single {
				die(err)
			}
			fmt.Printf("%10.1f  error: %v\n", amb, err)
			continue
		}
		agg.Add(res.Stats)
		if !single {
			fmt.Printf("%10.1f %12.1f %9.3f %9.3f %12.1f %12.1f %8.1f %8.2f %7d",
				amb, res.TargetMHz, res.NominalVddV, res.MinVddV,
				res.NominalPowerUW, res.PowerUW, res.SavingsPct, res.EnergyPJ, res.Probes)
			if !res.Feasible {
				fmt.Print("  [INFEASIBLE]")
			}
			if !res.Converged {
				fmt.Print("  [UNCONVERGED]")
			}
			fmt.Println()
			continue
		}
		fmt.Printf("\n  target frequency      %8.1f MHz", res.TargetMHz)
		if targetMHz <= 0 {
			fmt.Print("   (= conventional Tworst=100°C clock)")
		}
		fmt.Println()
		if !res.Feasible {
			fmt.Printf("  INFEASIBLE: the nominal %.3f V rail clocks only %.1f MHz at this ambient;\n",
				res.NominalVddV, res.FmaxMHz)
			fmt.Println("              the figures below are the nominal operating point, not a savings")
		}
		fmt.Printf("  min safe Vdd          %8.3f V   (nominal %.3f V)\n", res.MinVddV, res.NominalVddV)
		fmt.Printf("  power at target       %10.1f µW  (nominal %.1f µW)\n", res.PowerUW, res.NominalPowerUW)
		fmt.Printf("  energy per cycle      %10.2f pJ  (nominal %.2f pJ)\n", res.EnergyPJ, res.NominalEnergyPJ)
		fmt.Printf("  iso-frequency saving  %8.1f %%\n", res.SavingsPct)
		fmt.Printf("  timing headroom       %8.1f MHz at the min rail\n", res.FmaxMHz)
		fmt.Printf("  probes / iterations   %8d / %d\n", res.Probes, res.Iterations)
		fmt.Printf("  mean rise             %8.2f °C\n", res.RiseC)
		if !res.Converged {
			fmt.Println("  WARNING: the winning probe exhausted its iteration budget before the")
			fmt.Println("           temperature map settled; its figures are the last iterate")
		}
	}
	fmt.Printf("kernels: %s\n", agg)
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tafpga:", err)
		os.Exit(1)
	}
}
