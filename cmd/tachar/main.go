// Command tachar sizes an FPGA fabric for a thermal corner and dumps its
// characterization in the paper's Table II format, plus the
// temperature-delay curves of every resource:
//
//	tachar [-corner 25] [-sweep] [-compare 0,25,100]
//
// With -sweep it prints per-resource delay over 0..100 °C; with -compare it
// sizes one device per listed corner and prints the Fig. 2/3-style
// cross-evaluation.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tafpga/internal/arch"
	"tafpga/internal/coffe"
	"tafpga/internal/techmodel"
)

func main() {
	corner := flag.Float64("corner", 25, "sizing corner in °C")
	sweep := flag.Bool("sweep", false, "print per-resource delay over 0..100 °C")
	compare := flag.String("compare", "", "comma-separated corners to cross-evaluate")
	vprOut := flag.String("vpr", "", "write a VPR-style architecture XML to this path")
	vprTemp := flag.Float64("vpr-temp", 25, "characterization temperature for -vpr")
	flag.Parse()

	kit := techmodel.Default22nm()
	params := coffe.DefaultParams()

	dev, err := coffe.SizeDevice(kit, params, *corner)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tachar:", err)
		os.Exit(1)
	}

	fmt.Printf("Device sized for %.0f°C — Table II characterization\n", *corner)
	fmt.Println("resource     area(um2) | delay(ps)      | Pdyn(uW) | Plkg(uW)")
	for _, ch := range dev.CharacterizeAll() {
		fmt.Println(ch)
	}
	fmt.Printf("soft logic tile area: %.0f um2\n", dev.SoftTileArea())
	fmt.Printf("representative CP: %.1f ps @0C, %.1f ps @25C, %.1f ps @100C\n",
		dev.RepCP(0), dev.RepCP(25), dev.RepCP(100))

	if *vprOut != "" {
		f, err := os.Create(*vprOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tachar:", err)
			os.Exit(1)
		}
		if err := arch.WriteVPRXML(f, dev, *vprTemp); err != nil {
			fmt.Fprintln(os.Stderr, "tachar:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "tachar:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote VPR architecture (characterized at %.0f°C) to %s\n", *vprTemp, *vprOut)
	}

	if *sweep {
		fmt.Println("\nDelay sweep (ps):")
		fmt.Printf("%8s", "T(C)")
		for _, k := range coffe.Kinds() {
			fmt.Printf("%12s", k)
		}
		fmt.Println()
		for t := 0.0; t <= 100; t += 10 {
			fmt.Printf("%8.0f", t)
			for _, k := range coffe.Kinds() {
				fmt.Printf("%12.1f", dev.Delay(k, t))
			}
			fmt.Println()
		}
	}

	if *compare != "" {
		var corners []float64
		for _, f := range strings.Split(*compare, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tachar: bad corner list:", err)
				os.Exit(1)
			}
			corners = append(corners, v)
		}
		devs := map[float64]*coffe.Device{*corner: dev}
		for _, c := range corners {
			if _, ok := devs[c]; !ok {
				d, err := coffe.SizeDevice(kit, params, c)
				if err != nil {
					fmt.Fprintln(os.Stderr, "tachar:", err)
					os.Exit(1)
				}
				devs[c] = d
			}
		}
		fmt.Println("\nCross-evaluation (representative CP / BRAM / DSP delay in ps):")
		for _, eval := range corners {
			fmt.Printf("run @%3.0fC:", eval)
			for _, c := range corners {
				d := devs[c]
				fmt.Printf("  D%-3.0f cp=%6.1f bram=%6.1f dsp=%6.1f |", c,
					d.RepCP(eval), d.Delay(coffe.BRAM, eval), d.Delay(coffe.DSP, eval))
			}
			fmt.Println()
		}
	}
}
